package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cycledetect/internal/congest"
	"cycledetect/internal/core"
	"cycledetect/internal/graph"
	"cycledetect/internal/sweep"
)

// freshDecision runs the same query as a one-shot congest run and
// summarizes it — the ground truth a served query must reproduce exactly.
func freshDecision(t *testing.T, g *graph.Graph, engine congest.Engine, k, reps int, eps float64, seed uint64) core.Decision {
	t.Helper()
	res, err := congest.RunWith(engine, g, &core.Tester{K: k, Eps: eps, Reps: reps}, congest.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return core.Summarize(res.Outputs, res.IDs)
}

func TestQueryMatchesFreshRun(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	// The family form must build the identical graph the sweep layer
	// builds for the same spec and seed.
	gs := sweep.GraphSpec{Family: "gnm", N: 64, M: 256}
	g, err := sweep.BuildGraph(gs, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []congest.Engine{congest.EngineBSP, congest.EngineChannels} {
		for seed := uint64(1); seed <= 4; seed++ {
			resp, err := s.Query(context.Background(), &QueryRequest{
				Graph: GraphRequest{Family: "gnm", N: 64, M: 256, Seed: 3},
				K:     5, Eps: 0.1, Seed: seed,
				Engine: string(engine),
			})
			if err != nil {
				t.Fatal(err)
			}
			want := freshDecision(t, g, engine, 5, 0, 0.1, seed)
			if resp.Rejected != want.Reject ||
				!reflect.DeepEqual(resp.RejectingIDs, want.RejectingIDs) ||
				!reflect.DeepEqual(resp.Witness, want.Witness) ||
				resp.MaxSeqs != want.MaxSeqs {
				t.Fatalf("engine %s seed %d: served verdict differs from fresh run:\n got  %+v\n want %+v",
					engine, seed, resp, want)
			}
			if resp.N != g.N() || resp.M != g.M() {
				t.Fatalf("graph dims: got n=%d m=%d, want n=%d m=%d", resp.N, resp.M, g.N(), g.M())
			}
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != st.Queries-1 {
		t.Fatalf("one compile should serve all queries: %+v", st)
	}
}

// TestConcurrentQueriesDeterministic is the serving-layer version of the
// network concurrency contract: many clients, one cached graph, distinct
// seeds — every response identical to a sequential fresh run.
func TestConcurrentQueriesDeterministic(t *testing.T) {
	s := NewServer(Options{MaxInstances: 4})
	defer s.Close()
	g, err := sweep.BuildGraph(sweep.GraphSpec{Family: "gnm", N: 48, M: 192}, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	const seeds = 24
	want := make([]core.Decision, seeds)
	for i := range want {
		want[i] = freshDecision(t, g, congest.EngineBSP, 5, 2, 0, uint64(i))
	}
	var wg sync.WaitGroup
	for i := 0; i < seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Query(context.Background(), &QueryRequest{
				Graph: GraphRequest{Family: "gnm", N: 48, M: 192, Seed: 9},
				K:     5, Reps: 2, Seed: uint64(i),
			})
			if err != nil {
				t.Errorf("seed %d: %v", i, err)
				return
			}
			if resp.Rejected != want[i].Reject ||
				!reflect.DeepEqual(resp.RejectingIDs, want[i].RejectingIDs) ||
				!reflect.DeepEqual(resp.Witness, want[i].Witness) {
				t.Errorf("seed %d: concurrent served verdict differs from sequential fresh run", i)
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.InstancesLive > 4 {
		t.Fatalf("instance pool exceeded its cap: %+v", st)
	}
}

func TestDetectQuery(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	// C6 with a pendant edge, explicit form; the detector must certify the
	// cycle through {0,1}.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {2, 6}}
	resp, err := s.Query(context.Background(), &QueryRequest{
		Graph: GraphRequest{N: 7, Edges: edges},
		Op:    OpDetect, K: 6, Edge: &[2]int64{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Rejected || len(resp.Witness) != 6 {
		t.Fatalf("detector missed the C6: %+v", resp)
	}
	if resp.Rounds != 3 { // exactly ⌊k/2⌋
		t.Fatalf("detector rounds: got %d, want 3", resp.Rounds)
	}

	// The same edge set in a different order must hit the same cache entry
	// (canonical fingerprint keying).
	perm := [][2]int{{2, 6}, {5, 0}, {4, 5}, {3, 4}, {1, 2}, {2, 3}, {1, 0}}
	if _, err := s.Query(context.Background(), &QueryRequest{
		Graph: GraphRequest{N: 7, Edges: perm},
		Op:    OpDetect, K: 6, Edge: &[2]int64{0, 1},
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("fingerprint keying should dedupe permuted edge lists: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewServer(Options{MaxGraphs: 2})
	defer s.Close()
	query := func(n int) {
		t.Helper()
		if _, err := s.Query(context.Background(), &QueryRequest{
			Graph: GraphRequest{Family: "cycle", N: n},
			K:     5, Reps: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	query(10)
	query(11)
	query(12) // evicts cycle(10)
	st := s.Stats()
	if st.GraphsCached != 2 || st.Evictions != 1 {
		t.Fatalf("LRU bookkeeping: %+v", st)
	}
	query(10) // re-miss
	if st := s.Stats(); st.Misses != 4 {
		t.Fatalf("evicted graph should re-compile: %+v", st)
	}
}

// TestEvictionWakesWaitersAndQueriesSurvive drives the cache-churn race:
// queries on a graph whose entry gets LRU-evicted mid-flight (including
// waiters blocked on the instance pool) must still succeed by retrying
// against the re-compiled entry — not sleep out their deadline against the
// dead pool — and no instance may leak into an evicted pool (Close catches
// a leak as a spawned-count mismatch; -race catches the rest).
func TestEvictionWakesWaitersAndQueriesSurvive(t *testing.T) {
	s := NewServer(Options{MaxGraphs: 1, MaxInstances: 1})
	defer s.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				// Two distinct graphs fighting over one cache slot: every
				// miss evicts the other graph, while its queries are in
				// flight or waiting on its (capacity-1) pool.
				n := 10 + c%2
				if _, err := s.Query(context.Background(), &QueryRequest{
					Graph: GraphRequest{Family: "cycle", N: n},
					K:     5, Reps: 2, Seed: uint64(i),
				}); err != nil {
					t.Errorf("client %d query %d: %v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.Failures != 0 || st.Timeouts != 0 {
		t.Fatalf("churned queries should all succeed: %+v", st)
	}
	if st.GraphsCached != 1 {
		t.Fatalf("cache must hold exactly MaxGraphs entries: %+v", st)
	}
}

// TestQueryTimeout pins the abandoned-run semantics end to end: a 504'd
// query's run is CANCELLED at its next round barrier — not left to burn the
// remaining rounds — so its instance re-pools within rounds of the deadline
// and immediately serves the next query. The workload would run for tens of
// seconds if executed to completion; the 3-second release bound below can
// only be met by the cancellation path.
func TestQueryTimeout(t *testing.T) {
	s := NewServer(Options{QueryTimeout: 50 * time.Millisecond, MaxInstances: 1})
	defer s.Close()
	_, err := s.Query(context.Background(), &QueryRequest{
		Graph: GraphRequest{Family: "gnm", N: 128, M: 512, Seed: 1},
		K:     7, Reps: 60000, Seed: 1, // hundreds of thousands of rounds: tens of seconds if not aborted
	})
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Fatalf("timeout not counted: %+v", st)
	}
	released := time.Now()
	deadline := released.Add(3 * time.Second)
	for {
		if st := s.Stats(); st.InstancesIdle == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned instance not released within the cancellation window (run completion is tens of seconds away): %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The freed instance (the only one in the budget) serves the next
	// query; a leaked slot would park this one until ITS deadline.
	if _, err := s.Query(context.Background(), &QueryRequest{
		Graph: GraphRequest{Family: "gnm", N: 128, M: 512, Seed: 1},
		K:     7, Reps: 2, Seed: 2,
	}); err != nil {
		t.Fatalf("query after the cancelled run: %v", err)
	}
}

// TestSweepRunsOnQueryCache is the topology-sharing contract between the
// two traffic classes: a /sweep over a graph the query traffic already
// compiled performs ZERO compiles — its trials check instances out of the
// same cached core — its lookups count as cache hits in /stats, and its
// rows are byte-identical to the standalone sweep substrate.
func TestSweepRunsOnQueryCache(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	if _, err := s.Query(context.Background(), &QueryRequest{
		Graph: GraphRequest{Family: "gnm", N: 48, M: 192, Seed: 11},
		K:     5, Reps: 2, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	st0 := s.Stats()
	if st0.Compiles != 1 {
		t.Fatalf("warm-up should compile exactly once: %+v", st0)
	}

	spec := &sweep.Spec{
		Graphs: []sweep.GraphSpec{{Family: "gnm", N: 48, M: 192}},
		K:      []int{5, 7}, Eps: []float64{0.2}, Trials: 3, Seed: 11,
	}
	var got []sweep.Result
	sum, err := s.RunSweep(context.Background(), spec, sweep.FuncSink(func(r *sweep.Result) error {
		got = append(got, *r)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 2 || len(got) != 2 {
		t.Fatalf("sweep shape: %+v, %d rows", sum, len(got))
	}

	st := s.Stats()
	if st.Compiles != st0.Compiles {
		t.Fatalf("sweep on a cached graph must perform zero compiles: before %+v, after %+v", st0, st)
	}
	if st.Misses != st0.Misses || st.Hits <= st0.Hits {
		t.Fatalf("sweep lookups must hit the query-warmed entry: before %+v, after %+v", st0, st)
	}

	// Determinism across substrates: the standalone scheduler (its own
	// cores) must produce identical rows for the identical spec.
	standalone := &sweep.Spec{
		Graphs: []sweep.GraphSpec{{Family: "gnm", N: 48, M: 192}},
		K:      []int{5, 7}, Eps: []float64{0.2}, Trials: 3, Seed: 11,
	}
	var want []sweep.Result
	if _, err := sweep.Run(standalone, sweep.FuncSink(func(r *sweep.Result) error {
		want = append(want, *r)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i].Elapsed, got[i].Elapsed = 0, 0
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("row %d differs between substrates:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

// TestSweepCancelStopsServerTrials: killing a served sweep's context stops
// its trials (the stream's rows cease) and does not poison the server —
// the instances released by the dying sweep serve later queries.
func TestSweepCancelStopsServerTrials(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := &sweep.Spec{
		Graphs: []sweep.GraphSpec{{Family: "gnm", N: 64, M: 256}},
		K:      []int{5, 6, 7}, Eps: []float64{0.25, 0.1, 0.05},
		Trials: 500, Seed: 3, Workers: 1,
	}
	rows := 0
	_, err := s.RunSweep(ctx, spec, sweep.FuncSink(func(r *sweep.Result) error {
		rows++
		cancel()
		return nil
	}))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep: got %v", err)
	}
	if rows >= 9 {
		t.Fatalf("sweep ran its whole grid (%d rows) despite cancellation", rows)
	}
	if st := s.Stats(); st.Failures != 0 {
		t.Fatalf("a client-cancelled sweep is not a server failure: %+v", st)
	}
	if _, err := s.Query(context.Background(), &QueryRequest{
		Graph: GraphRequest{Family: "gnm", N: 64, M: 256, Seed: 3},
		K:     5, Reps: 2, Seed: 1,
	}); err != nil {
		t.Fatalf("query after a cancelled sweep: %v", err)
	}
}

// TestByteWeightedEviction: eviction is driven by summed compiled size
// (Compiled.MemSize), and the most recently used entry always survives,
// even alone over budget.
func TestByteWeightedEviction(t *testing.T) {
	q := func(t *testing.T, s *Server, n, m int) {
		t.Helper()
		if _, err := s.Query(context.Background(), &QueryRequest{
			Graph: GraphRequest{Family: "gnm", N: n, M: m, Seed: 5},
			K:     5, Reps: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("two-do-not-fit", func(t *testing.T) {
		// Budget sized to hold one 64-node core (~12 KiB) but not two.
		s := NewServer(Options{MaxCacheBytes: 20 << 10})
		defer s.Close()
		q(t, s, 64, 256)
		q(t, s, 64, 192) // over budget together: evicts the first
		st := s.Stats()
		if st.Evictions != 1 || st.GraphsCached != 1 {
			t.Fatalf("byte-weighted eviction: %+v", st)
		}
		if st.CacheBytes > st.MaxCacheBytes || st.CacheBytes == 0 {
			t.Fatalf("cache bytes out of budget: %+v", st)
		}
		q(t, s, 64, 256) // the evicted graph re-compiles
		if st := s.Stats(); st.Compiles != 3 {
			t.Fatalf("evicted graph should re-compile: %+v", st)
		}
	})
	t.Run("mru-survives-over-budget", func(t *testing.T) {
		s := NewServer(Options{MaxCacheBytes: 1})
		defer s.Close()
		q(t, s, 64, 256)
		q(t, s, 64, 192)
		st := s.Stats()
		if st.GraphsCached != 1 || st.Evictions != 1 {
			t.Fatalf("an over-budget MRU entry must still serve: %+v", st)
		}
	})
}

// TestInstanceBudgetDegradesAcrossGraphs: with a server-wide budget of 2
// instances, queries across many distinct graphs keep succeeding — cold
// graphs' idle instances are reclaimed for hot ones — and the live count
// never exceeds the budget.
func TestInstanceBudgetDegradesAcrossGraphs(t *testing.T) {
	s := NewServer(Options{MaxInstances: 2})
	defer s.Close()
	for i := 0; i < 12; i++ {
		n := 10 + i%6 // six distinct graphs round-robin
		if _, err := s.Query(context.Background(), &QueryRequest{
			Graph: GraphRequest{Family: "cycle", N: n},
			K:     5, Reps: 1, Seed: uint64(i),
		}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if st := s.Stats(); st.InstancesLive > 2 {
			t.Fatalf("query %d blew the server-wide instance budget: %+v", i, st)
		}
	}
	if st := s.Stats(); st.Failures != 0 || st.Timeouts != 0 {
		t.Fatalf("degraded-mode queries must all succeed: %+v", st)
	}
}

func TestQueryValidation(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	bad := []QueryRequest{
		{Graph: GraphRequest{Family: "gnm", N: 16}, K: 2, Eps: 0.1},                    // k too small
		{Graph: GraphRequest{Family: "gnm", N: 16}, K: 4},                              // no eps, no reps
		{Graph: GraphRequest{Family: "nope", N: 16}, K: 4, Eps: 0.1},                   // unknown family
		{Graph: GraphRequest{Family: "gnm", N: 16}, K: 4, Eps: 0.1, Op: "zap"},         // unknown op
		{Graph: GraphRequest{Family: "gnm", N: 16}, K: 4, Eps: 0.1, Op: OpDetect},      // detect without edge
		{Graph: GraphRequest{N: 4, Edges: [][2]int{{0, 1}, {2, 3}}}, K: 4, Eps: 0.1},   // disconnected
		{Graph: GraphRequest{}, K: 4, Eps: 0.1},                                        // no graph at all
		{Graph: GraphRequest{Family: "gnm", N: 16}, K: 4, Eps: 0.1, Engine: "quantum"}, // unknown engine
		{Graph: GraphRequest{Family: "gnm", N: 16}, K: 4, Eps: 0.1, Op: OpDetect,
			Edge: &[2]int64{5, 5}}, // detect with equal endpoints (matches DetectThroughEdge)
	}
	for i, req := range bad {
		if _, err := s.Query(context.Background(), &req); err == nil {
			t.Errorf("case %d: bad request accepted", i)
		}
	}
}

// --- HTTP surface ---

func TestHTTPQueryAndStats(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"graph":{"family":"gnm","n":64,"m":256,"seed":3},"k":5,"eps":0.1,"seed":2}`
	var first QueryResponse
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d", resp.StatusCode)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		wantCache := "miss"
		if i == 1 {
			wantCache = "hit"
			if qr.Rejected != first.Rejected || !reflect.DeepEqual(qr.Witness, first.Witness) {
				t.Fatalf("identical query gave a different verdict on the cache hit")
			}
		}
		if qr.Cache != wantCache {
			t.Fatalf("query %d: cache=%q, want %q", i, qr.Cache, wantCache)
		}
		first = qr
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats over HTTP: %+v", st)
	}
	// The per-entry breakdown: one cached graph with its compiled size,
	// hit count, and age, consistent with the byte-weighted totals.
	if len(st.Entries) != 1 {
		t.Fatalf("want one cache entry in /stats, got %+v", st.Entries)
	}
	e := st.Entries[0]
	if e.N != 64 || e.M != 256 || e.Bytes <= 0 || e.Hits != 1 || e.AgeSeconds < 0 {
		t.Fatalf("per-entry stats: %+v", e)
	}
	if st.CacheBytes != e.Bytes || st.MaxCacheBytes <= 0 || st.InstanceBudget < 1 {
		t.Fatalf("byte-weighted totals and budget occupancy: %+v", st)
	}

	// Malformed and unknown-field payloads are 400s, not 500s.
	for _, bad := range []string{`{`, `{"bogus_field":1}`} {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %q: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestHTTPSweepStreams(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"graphs":[{"family":"cycle","n":12}],"k":[5,7],"eps":[0.2],"trials":3,"seed":1}`

	t.Run("jsonl", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 3 { // 2 rows + summary
			t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
		}
		var row sweep.Result
		if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
			t.Fatal(err)
		}
		if row.K != 5 || row.Trials != 3 {
			t.Fatalf("first row: %+v", row)
		}
		if !strings.Contains(lines[2], `"event":"summary"`) {
			t.Fatalf("missing summary tail: %s", lines[2])
		}
	})

	t.Run("sse", func(t *testing.T) {
		req, _ := http.NewRequest("POST", ts.URL+"/sweep", strings.NewReader(spec))
		req.Header.Set("Accept", "text/event-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("content type %q", ct)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		out := buf.String()
		if n := strings.Count(out, "event: row\n"); n != 2 {
			t.Fatalf("got %d row events, want 2:\n%s", n, out)
		}
		if !strings.Contains(out, "event: summary\n") {
			t.Fatalf("missing summary event:\n%s", out)
		}
	})

	t.Run("invalid-spec", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(`{"graphs":[],"k":[5],"eps":[0.2],"trials":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400", resp.StatusCode)
		}
	})
}

func TestServerClosed(t *testing.T) {
	s := NewServer(Options{})
	s.Close()
	if _, err := s.Query(context.Background(), &QueryRequest{
		Graph: GraphRequest{Family: "cycle", N: 9}, K: 5, Reps: 1,
	}); err == nil {
		t.Fatal("closed server accepted a query")
	}
}

// TestWarningsSurfaceOnBigK pins the combin q-cap advisory end to end: a
// sweep spec with k past the calibrated range validates but warns.
func TestWarningsSurfaceOnBigK(t *testing.T) {
	spec := sweep.Spec{
		Graphs: []sweep.GraphSpec{{Family: "cycle", N: 16}},
		K:      []int{5, 11},
		Eps:    []float64{0.2},
		Trials: 1,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	ws := spec.Warnings()
	if len(ws) != 1 || !strings.Contains(ws[0], "k=11") {
		t.Fatalf("warnings: %v", ws)
	}
}
