package serve

// Tests for the observability surface: /metrics exposition over HTTP,
// scrape-under-load safety, run-ID tracing through logs, error envelopes
// and the /stats in-flight table, and the sweep width handshake.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cycledetect/internal/network"
	"cycledetect/internal/sweep"
)

// scrape fetches /metrics and returns the body, asserting the Prometheus
// text content type.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// metricValue finds `name value` or `name{labels} value` in an exposition
// body and returns the value; -1 when the series is absent.
func metricValue(body, series string) float64 {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// TestHTTPMetricsExposition drives real traffic (queries with a cache hit,
// a streamed sweep) and validates the scrape: catalog presence with
// HELP/TYPE, counters consistent with /stats, engine run metrics fed by
// the collector, sweep progress counters, and histogram cumulativity.
func TestHTTPMetricsExposition(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"graph":{"family":"gnm","n":48,"m":160,"seed":3},"k":5,"eps":0.1,"seed":2}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: HTTP %d", i, resp.StatusCode)
		}
	}
	spec := `{"graphs":[{"family":"cycle","n":12}],"k":[5],"eps":[0.2],"trials":2,"seed":1,"batch_width":2}`
	resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: HTTP %d", resp.StatusCode)
	}

	out := scrape(t, ts.URL)

	// Catalog: every family the runbook documents exists, with HELP and
	// TYPE preceding its samples.
	for _, name := range []string{
		"serve_queries_total", "serve_sweeps_total", "serve_timeouts_total",
		"serve_failures_total", "serve_panics_recovered_total",
		"serve_in_flight", "serve_queue_depth", "serve_queue_high_water",
		"serve_shed_total", "serve_cache_hits_total", "serve_cache_misses_total",
		"serve_cache_evictions_total", "serve_cache_compiles_total",
		"serve_cache_graphs", "serve_cache_bytes", "serve_cache_bytes_max",
		"serve_instances_live", "serve_instances_idle", "serve_instance_budget",
		"serve_instance_bytes", "serve_instance_bytes_max",
		"serve_faults_injected_total",
		"serve_queue_wait_seconds", "serve_acquire_seconds", "serve_run_seconds",
		"serve_query_seconds", "serve_sweep_seconds",
		"engine_runs_total", "engine_rounds_total", "engine_messages_total",
		"engine_bits_total", "engine_canceled_total", "engine_failed_total",
		"engine_fault_runs_total", "engine_run_messages", "engine_max_message_bits",
		"engine_batch_width",
		"sweep_jobs_total", "sweep_jobs_done_total", "sweep_trials_total",
		"sweep_retries_total", "sweep_active_workers", "sweep_batched_trials_total",
	} {
		if !strings.Contains(out, "# HELP "+name+" ") {
			t.Errorf("missing HELP for %s", name)
		}
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("missing TYPE for %s", name)
		}
	}

	// Counters agree with the traffic just driven (CounterFunc reads the
	// same atomics /stats reports — no double counting).
	if v := metricValue(out, "serve_queries_total"); v != 2 {
		t.Errorf("serve_queries_total = %v, want 2", v)
	}
	if v := metricValue(out, "serve_cache_hits_total"); v != 1 {
		t.Errorf("serve_cache_hits_total = %v, want 1", v)
	}
	if v := metricValue(out, "serve_sweeps_total"); v != 1 {
		t.Errorf("serve_sweeps_total = %v, want 1", v)
	}
	// The collector fed per-engine run metrics: 2 query reps + 2 sweep
	// trials all ran on the default BSP engine.
	if v := metricValue(out, `engine_runs_total{engine="bsp"}`); v < 3 {
		t.Errorf(`engine_runs_total{engine="bsp"} = %v, want >= 3`, v)
	}
	if v := metricValue(out, `engine_rounds_total{engine="bsp"}`); v <= 0 {
		t.Errorf("engine_rounds_total = %v, want > 0", v)
	}
	if v := metricValue(out, `engine_messages_total{engine="bsp"}`); v <= 0 {
		t.Errorf("engine_messages_total = %v, want > 0", v)
	}
	// Sweep progress counters reflect the finished sweep, and the active
	// worker gauge has drained back to zero.
	if v := metricValue(out, "sweep_jobs_done_total"); v != 1 {
		t.Errorf("sweep_jobs_done_total = %v, want 1", v)
	}
	if v := metricValue(out, "sweep_trials_total"); v != 2 {
		t.Errorf("sweep_trials_total = %v, want 2", v)
	}
	// The sweep asked for batch_width 2: both trials ran through one
	// batched engine pass, and the per-engine width high-water saw it
	// (queries record width 1, so 2 proves a batched pass happened).
	if v := metricValue(out, "sweep_batched_trials_total"); v != 2 {
		t.Errorf("sweep_batched_trials_total = %v, want 2", v)
	}
	if v := metricValue(out, `engine_batch_width{engine="bsp"}`); v != 2 {
		t.Errorf(`engine_batch_width{engine="bsp"} = %v, want 2`, v)
	}
	if v := metricValue(out, "sweep_active_workers"); v != 0 {
		t.Errorf("sweep_active_workers = %v, want 0 after the sweep", v)
	}
	// The run histogram saw every successful engine-backed query; buckets
	// are cumulative and the +Inf bucket equals the count.
	if v := metricValue(out, "serve_run_seconds_count"); v != 2 {
		t.Errorf("serve_run_seconds_count = %v, want 2", v)
	}
	assertCumulative(t, out, "serve_run_seconds")
	assertCumulative(t, out, `serve_queue_wait_seconds`)
}

// assertCumulative checks that a histogram's buckets never decrease and
// its +Inf bucket equals its _count.
func assertCumulative(t *testing.T, body, name string) {
	t.Helper()
	var prev float64
	var inf float64 = -1
	seen := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"_bucket{") {
			continue
		}
		seen = true
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("%s: bad bucket line %q", name, line)
		}
		if v < prev && !strings.Contains(line, `le="+Inf"`) {
			t.Fatalf("%s: bucket decreased in %q", name, line)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			inf = v
			prev = 0 // next labeled series restarts
		}
	}
	if !seen {
		t.Fatalf("no buckets for %s", name)
	}
	if inf < 0 {
		t.Fatalf("%s: no +Inf bucket", name)
	}
}

// TestMetricsDisabled: DisableMetrics removes the endpoint entirely.
func TestMetricsDisabled(t *testing.T) {
	s := NewServer(Options{DisableMetrics: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /metrics: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestPprofMounting: the profiler is opt-in — absent by default, live
// under /debug/pprof/ with EnablePprof.
func TestPprofMounting(t *testing.T) {
	s := NewServer(Options{EnablePprof: true})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: HTTP %d, want 200", resp.StatusCode)
	}

	off := NewServer(Options{})
	defer off.Close()
	ts2 := httptest.NewServer(off.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without EnablePprof")
	}
}

// TestConcurrentScrapeUnderLoad hammers the server with queries while
// scraping /metrics continuously: scrapes must stay consistent (counters
// only grow, histograms stay cumulative) and never block or be blocked by
// admissions. Run with -race this doubles as the data-race gate for every
// recording site.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const loaders, queriesEach, scrapes = 4, 6, 10
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				body := fmt.Sprintf(
					`{"graph":{"family":"cycle","n":%d},"k":5,"reps":1,"seed":%d}`,
					16+l, i)
				resp, err := http.Post(ts.URL+"/query", "application/json",
					strings.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(l)
	}
	var lastQueries float64
	for i := 0; i < scrapes; i++ {
		out := scrape(t, ts.URL)
		if v := metricValue(out, "serve_queries_total"); v < lastQueries {
			t.Fatalf("serve_queries_total went backwards: %v -> %v", lastQueries, v)
		} else {
			lastQueries = v
		}
		assertCumulative(t, out, "serve_queue_wait_seconds")
	}
	wg.Wait()
	out := scrape(t, ts.URL)
	if v := metricValue(out, "serve_queries_total"); v != loaders*queriesEach {
		t.Fatalf("serve_queries_total = %v after load, want %d", v, loaders*queriesEach)
	}
}

// TestRunIDTracing follows one request ID end to end: honored from
// X-Request-ID and echoed back, quoted in error envelopes, printed on the
// request log line, and — while the request is parked inside the server —
// visible with its stage in the /stats in-flight table.
func TestRunIDTracing(t *testing.T) {
	var logMu sync.Mutex
	var logLines []string
	s := NewServer(Options{
		LogRequests: true,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logLines = append(logLines, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A malformed request with a client-chosen ID: the ID comes back in
	// the header AND inside the JSON error envelope.
	req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(`{`))
	req.Header.Set("X-Request-ID", "trace-me-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-7" {
		t.Fatalf("X-Request-ID echoed as %q", got)
	}
	var envelope struct {
		Error string `json:"error"`
		RunID string `json:"run_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if envelope.RunID != "trace-me-7" || envelope.Error == "" {
		t.Fatalf("error envelope lacks the run-ID: %+v", envelope)
	}

	// Without a client ID the server mints one.
	resp2, err := http.Post(ts.URL+"/healthz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	// (POST /healthz is a 405 from the mux — still traced.)
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated X-Request-ID on response")
	}

	// The request log line carries the same ID.
	logMu.Lock()
	joined := strings.Join(logLines, "\n")
	logMu.Unlock()
	if !strings.Contains(joined, "run_id=trace-me-7") ||
		!strings.Contains(joined, "status=400") {
		t.Fatalf("request log missing the traced line:\n%s", joined)
	}

	// In-flight visibility: hold the query gate's only implicit slot by
	// acquiring it directly, then park a tracked query behind it — /stats
	// must show the run-ID at stage "admit" while it waits.
	s2 := NewServer(Options{MaxConcurrentQueries: 1})
	defer s2.Close()
	if err := s2.queryGate.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx := WithRunID(context.Background(), "parked-1")
		_, err := s2.Query(ctx, &QueryRequest{
			Graph: GraphRequest{Family: "cycle", N: 10}, K: 5, Reps: 1,
		})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s2.Stats()
		if len(st.InFlightRequests) == 1 {
			fl := st.InFlightRequests[0]
			if fl.RunID != "parked-1" || fl.Endpoint != "query" || fl.Stage != "admit" {
				t.Fatalf("in-flight entry: %+v", fl)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tracked query never appeared in /stats in-flight table")
		}
		time.Sleep(time.Millisecond)
	}
	s2.queryGate.release()
	if err := <-done; err != nil {
		t.Fatalf("parked query after release: %v", err)
	}
	if st := s2.Stats(); len(st.InFlightRequests) != 0 {
		t.Fatalf("in-flight table not drained: %+v", st.InFlightRequests)
	}
}

// TestSweepWidthHandshake: the provider honors the scheduler's budgeted
// engine width (pt.Workers) instead of the per-query default, and width is
// part of the pool identity so differently-sized warm instances never mix.
func TestSweepWidthHandshake(t *testing.T) {
	// The provider clamps widths to the hardware; make sure two cores are
	// "available" so the budgeted width survives the clamp on 1-CPU CI.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))

	s := NewServer(Options{NetworkWorkers: 1})
	defer s.Close()
	p := coreProvider{s: s}
	pt := sweep.TrialPoint{
		Graph: sweep.GraphSpec{Family: "cycle", N: 16},
		K:     5, Eps: 0.2, Seed: 1,
		Engine: network.EngineBSP,
	}

	pt.Workers = 2
	inst2, rel2, err := p.Acquire(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst2.Workers(); got != 2 {
		t.Fatalf("budgeted width 2 gave an instance of width %d", got)
	}
	rel2()

	// Width 0 falls back to the server's per-query NetworkWorkers — and
	// must NOT reuse the width-2 instance parked above.
	pt.Workers = 0
	inst1, rel1, err := p.Acquire(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst1.Workers(); got != 1 {
		t.Fatalf("default width gave an instance of width %d", got)
	}
	if inst1 == inst2 {
		t.Fatal("width-1 checkout poached the width-2 warm instance")
	}
	rel1()
}
