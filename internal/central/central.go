// Package central provides centralized (full-knowledge) algorithms for
// k-cycle detection. They serve three roles:
//
//   - ground-truth oracles that the distributed algorithms are validated
//     against (exhaustive DFS enumeration);
//   - classical baselines for the comparison experiment E11 (color coding,
//     in the spirit of Monien's representative-family path algorithms the
//     paper connects itself to in §1.2);
//   - farness certification via greedy edge-disjoint cycle packing
//     (Lemma 4).
package central

import (
	"math/bits"

	"cycledetect/internal/graph"
	"cycledetect/internal/xrand"
)

// FindCk returns a k-cycle in g as an ordered vertex list (each consecutive
// pair adjacent, last adjacent to first), or nil if none exists. Exhaustive
// DFS with canonical-start pruning: only cycles whose minimum vertex is the
// DFS root are explored, so each cycle is considered from exactly one root.
func FindCk(g *graph.Graph, k int) []int {
	if k < 3 {
		panic("central: FindCk needs k >= 3")
	}
	if k > g.N() {
		return nil
	}
	inPath := make([]bool, g.N())
	path := make([]int, 0, k)
	var dfs func(v, root int) []int
	dfs = func(v, root int) []int {
		if len(path) == k {
			if g.HasEdge(v, root) {
				return append([]int(nil), path...)
			}
			return nil
		}
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if w <= root || inPath[w] {
				continue
			}
			path = append(path, w)
			inPath[w] = true
			if cyc := dfs(w, root); cyc != nil {
				return cyc
			}
			inPath[w] = false
			path = path[:len(path)-1]
		}
		return nil
	}
	for root := 0; root < g.N(); root++ {
		path = append(path[:0], root)
		inPath[root] = true
		if cyc := dfs(root, root); cyc != nil {
			return cyc
		}
		inPath[root] = false
	}
	return nil
}

// HasCk reports whether g contains a k-cycle as a subgraph.
func HasCk(g *graph.Graph, k int) bool { return FindCk(g, k) != nil }

// FindCkThroughEdge returns a k-cycle through edge e as an ordered vertex
// list starting with e.U and ending with e.V, or nil. It searches for a
// simple path of k-1 edges from e.U to e.V that avoids re-crossing e.
func FindCkThroughEdge(g *graph.Graph, k int, e graph.Edge) []int {
	if k < 3 {
		panic("central: FindCkThroughEdge needs k >= 3")
	}
	if !g.HasEdge(e.U, e.V) {
		return nil
	}
	inPath := make([]bool, g.N())
	path := make([]int, 0, k)
	path = append(path, e.U)
	inPath[e.U] = true
	var dfs func(v int) []int
	dfs = func(v int) []int {
		if len(path) == k {
			if v == e.V {
				return append([]int(nil), path...)
			}
			return nil
		}
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if inPath[w] {
				continue
			}
			if v == e.U && w == e.V && len(path) == 1 {
				continue // would traverse e itself
			}
			if w == e.V && len(path) != k-1 {
				continue // e.V may only appear as the final vertex
			}
			path = append(path, w)
			inPath[w] = true
			if cyc := dfs(w); cyc != nil {
				return cyc
			}
			inPath[w] = false
			path = path[:len(path)-1]
		}
		return nil
	}
	return dfs(e.U)
}

// HasCkThroughEdge reports whether some k-cycle passes through e.
func HasCkThroughEdge(g *graph.Graph, k int, e graph.Edge) bool {
	return FindCkThroughEdge(g, k, e) != nil
}

// CountCk counts the k-cycle subgraphs of g. Each cycle is counted once:
// the DFS is rooted at the cycle's minimum vertex and the two traversal
// directions are collapsed by requiring the second vertex to be smaller
// than the last.
func CountCk(g *graph.Graph, k int) int64 {
	if k < 3 {
		panic("central: CountCk needs k >= 3")
	}
	var count int64
	inPath := make([]bool, g.N())
	path := make([]int, 0, k)
	var dfs func(v, root int)
	dfs = func(v, root int) {
		if len(path) == k {
			if g.HasEdge(v, root) && path[1] < path[k-1] {
				count++
			}
			return
		}
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if w <= root || inPath[w] {
				continue
			}
			path = append(path, w)
			inPath[w] = true
			dfs(w, root)
			inPath[w] = false
			path = path[:len(path)-1]
		}
	}
	for root := 0; root < g.N(); root++ {
		path = append(path[:0], root)
		inPath[root] = true
		dfs(root, root)
		inPath[root] = false
	}
	return count
}

// CountTriangles counts triangles with the standard neighbor-intersection
// method over edges. Cross-checked against CountCk(g, 3) in tests; provided
// separately because it is near-linear on sparse graphs and used by large
// experiments.
func CountTriangles(g *graph.Graph) int64 {
	var count int64
	for u := 0; u < g.N(); u++ {
		nu := g.Neighbors(u)
		for _, v32 := range nu {
			v := int(v32)
			if v <= u {
				continue
			}
			nv := g.Neighbors(v)
			// Merge-intersect the two sorted lists, counting w > v so each
			// triangle u<v<w is seen exactly once.
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				a, b := nu[i], nv[j]
				switch {
				case a == b:
					if int(a) > v {
						count++
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	return count
}

// CyclesThroughEdge counts k-cycles through edge e (simple paths of k-1
// edges from e.U to e.V avoiding e), counting each once.
func CyclesThroughEdge(g *graph.Graph, k int, e graph.Edge) int64 {
	var count int64
	inPath := make([]bool, g.N())
	depth := 0
	var dfs func(v int)
	dfs = func(v int) {
		if depth == k-1 {
			if v == e.V {
				count++
			}
			return
		}
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if inPath[w] {
				continue
			}
			if depth == 0 && v == e.U && w == e.V {
				continue
			}
			if w == e.V && depth != k-2 {
				continue
			}
			inPath[w] = true
			depth++
			dfs(w)
			depth--
			inPath[w] = false
		}
	}
	if !g.HasEdge(e.U, e.V) {
		return 0
	}
	inPath[e.U] = true
	dfs(e.U)
	return count
}

// GreedyCyclePacking greedily packs edge-disjoint k-cycles: find a k-cycle,
// delete its edges, repeat. Returns the packed cycles. The result is a lower
// bound on the maximum packing, hence (via Lemma 4's converse direction) a
// farness certificate: the graph is ε-far from Ck-free for all ε < q/m.
func GreedyCyclePacking(g *graph.Graph, k int) [][]int {
	cur := g
	var packed [][]int
	for {
		cyc := FindCk(cur, k)
		if cyc == nil {
			return packed
		}
		packed = append(packed, cyc)
		drop := make(map[graph.Edge]bool, k)
		for i := range cyc {
			drop[graph.Edge{U: cyc[i], V: cyc[(i+1)%k]}.Canon()] = true
		}
		cur = graph.Subgraph(cur, func(e graph.Edge) bool { return !drop[e] })
	}
}

// ColorCoding is the classical randomized FPT detector for Ck (Alon–Yuster–
// Zwick style): color vertices uniformly with k colors and search for a
// "colorful" cycle — one using every color — by dynamic programming over
// (colorset, endpoint) states from each anchor vertex. A k-cycle survives a
// coloring with probability k!/k^k, so iters ≈ e^k·ln(1/δ) colorings give
// failure probability δ. One-sided: a reported cycle always exists.
//
// It exists as the E11 comparison baseline; k must be at most 20 (colorsets
// are bitmasks).
func ColorCoding(g *graph.Graph, k int, iters int, rng *xrand.RNG) bool {
	if k < 3 || k > 20 {
		panic("central: ColorCoding needs 3 <= k <= 20")
	}
	n := g.N()
	color := make([]uint8, n)
	for it := 0; it < iters; it++ {
		for v := range color {
			color[v] = uint8(rng.Intn(k))
		}
		if colorfulCycle(g, k, color) {
			return true
		}
	}
	return false
}

// colorfulCycle reports whether g has a cycle of length k all of whose
// vertex colors are distinct under color (hence exactly the k colors).
func colorfulCycle(g *graph.Graph, k int, color []uint8) bool {
	n := g.N()
	full := uint32(1)<<k - 1
	// reach[mask] is the set of vertices v such that some colorful path from
	// the anchor s to v uses exactly the colors in mask. Represented as a
	// bitset over vertices.
	words := (n + 63) / 64
	reach := make([][]uint64, full+1)
	for s := 0; s < n; s++ {
		// Anchor at s; to avoid recounting, require s to carry color 0 — any
		// colorful cycle has exactly one color-0 vertex to anchor at.
		if color[s] != 0 {
			continue
		}
		for m := range reach {
			reach[m] = nil
		}
		start := uint32(1) << color[s]
		reach[start] = make([]uint64, words)
		reach[start][s/64] |= 1 << (s % 64)
		// Iterate masks in increasing popcount order implicitly: increasing
		// numeric order suffices since supersets are numerically larger only
		// when... not in general; use explicit BFS over masks by popcount.
		masks := masksByPopcount(k)
		for _, m := range masks {
			bs := reach[m]
			if bs == nil {
				continue
			}
			for w := 0; w < words; w++ {
				word := bs[w]
				for word != 0 {
					b := word & (-word)
					v := w*64 + bits.TrailingZeros64(b)
					word ^= b
					for _, x32 := range g.Neighbors(v) {
						x := int(x32)
						cm := uint32(1) << color[x]
						if m&cm != 0 {
							continue
						}
						nm := m | cm
						if reach[nm] == nil {
							reach[nm] = make([]uint64, words)
						}
						reach[nm][x/64] |= 1 << (x % 64)
					}
				}
			}
		}
		if bs := reach[full]; bs != nil {
			// A colorful path from s spanning all k colors ends at some v;
			// it is a cycle iff v is adjacent to s.
			for _, x32 := range g.Neighbors(s) {
				x := int(x32)
				if bs[x/64]&(1<<(x%64)) != 0 {
					return true
				}
			}
		}
	}
	return false
}

func masksByPopcount(k int) []uint32 {
	full := uint32(1)<<k - 1
	masks := make([]uint32, 0, full+1)
	for pc := 1; pc <= k; pc++ {
		for m := uint32(1); m <= full; m++ {
			if bits.OnesCount32(m) == pc {
				masks = append(masks, m)
			}
		}
	}
	return masks
}
