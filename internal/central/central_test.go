package central

import (
	"testing"

	"cycledetect/internal/graph"
	"cycledetect/internal/xrand"
)

func TestHasCkKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		want bool
	}{
		{"C5 has C5", graph.Cycle(5), 5, true},
		{"C5 no C4", graph.Cycle(5), 4, false},
		{"C5 no C3", graph.Cycle(5), 3, false},
		{"K4 has C3", graph.Complete(4), 3, true},
		{"K4 has C4", graph.Complete(4), 4, true},
		{"K4 no C5", graph.Complete(4), 5, false},
		{"K5 has C5", graph.Complete(5), 5, true},
		{"tree no C3", graph.Path(8), 3, false},
		{"K3,3 has C6", graph.CompleteBipartite(3, 3), 6, true},
		{"K3,3 no C5", graph.CompleteBipartite(3, 3), 5, false},
		{"K3,3 has C4", graph.CompleteBipartite(3, 3), 4, true},
		{"grid has C4", graph.Grid(3, 3), 4, true},
		{"grid no C5", graph.Grid(3, 3), 5, false},
		{"grid has C6", graph.Grid(3, 3), 6, true},
		{"wheel has C7", graph.Wheel(8), 7, true},
		{"wheel8 has C8", graph.Wheel(8), 8, true}, // hub + 7-rim = C8? rim is C7; hub+6 rim nodes = C7... check below
	}
	for _, c := range cases {
		if c.name == "wheel8 has C8" {
			// Wheel(8): hub 0 plus rim C7. A Hamiltonian cycle exists: rim
			// path 1..7 plus hub between 7 and 1. That is 8 nodes.
			c.want = true
		}
		if got := HasCk(c.g, c.k); got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
}

func TestFindCkReturnsValidCycle(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(10)
		g := graph.ConnectedGNM(n, clampEdges(n, n+rng.Intn(2*n)), rng)
		for k := 3; k <= 7 && k <= n; k++ {
			cyc := FindCk(g, k)
			if cyc == nil {
				continue
			}
			assertCycle(t, g, k, cyc)
		}
	}
}

func assertCycle(t *testing.T, g *graph.Graph, k int, cyc []int) {
	t.Helper()
	if len(cyc) != k {
		t.Fatalf("cycle %v has length %d want %d", cyc, len(cyc), k)
	}
	seen := map[int]bool{}
	for _, v := range cyc {
		if seen[v] {
			t.Fatalf("cycle %v repeats %d", cyc, v)
		}
		seen[v] = true
	}
	for i := range cyc {
		if !g.HasEdge(cyc[i], cyc[(i+1)%k]) {
			t.Fatalf("cycle %v: missing edge %d-%d", cyc, cyc[i], cyc[(i+1)%k])
		}
	}
}

func TestFindCkThroughEdge(t *testing.T) {
	g := graph.Wheel(8)
	for k := 3; k <= 8; k++ {
		for _, e := range g.Edges() {
			cyc := FindCkThroughEdge(g, k, e)
			if cyc == nil {
				continue
			}
			assertCycle(t, g, k, cyc)
			if !(cyc[0] == e.U && cyc[len(cyc)-1] == e.V) {
				t.Fatalf("cycle %v does not start at %d and end at %d", cyc, e.U, e.V)
			}
		}
	}
	// Through-edge vs whole-graph consistency: HasCk iff some edge has one.
	for k := 3; k <= 8; k++ {
		any := false
		for _, e := range g.Edges() {
			if HasCkThroughEdge(g, k, e) {
				any = true
			}
		}
		if any != HasCk(g, k) {
			t.Fatalf("k=%d: per-edge and global detection disagree", k)
		}
	}
}

func TestFindCkThroughEdgeNonEdge(t *testing.T) {
	g := graph.Cycle(6)
	if FindCkThroughEdge(g, 6, graph.Edge{U: 0, V: 3}) != nil {
		t.Fatal("found cycle through non-edge")
	}
}

func TestCountCkKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		want int64
	}{
		{"C6 one C6", graph.Cycle(6), 6, 1},
		{"K4 triangles", graph.Complete(4), 3, 4},
		{"K4 C4s", graph.Complete(4), 4, 3},
		{"K5 triangles", graph.Complete(5), 3, 10},
		{"K5 C4s", graph.Complete(5), 4, 15},
		{"K5 C5s", graph.Complete(5), 5, 12},
		{"K3,3 C4s", graph.CompleteBipartite(3, 3), 4, 9},
		{"K3,3 C6s", graph.CompleteBipartite(3, 3), 6, 6},
		{"grid2x3 C4s", graph.Grid(2, 3), 4, 2},
		{"petersen-ish wheel5 C3", graph.Wheel(5), 3, 4},
	}
	for _, c := range cases {
		if got := CountCk(c.g, c.k); got != c.want {
			t.Errorf("%s: got %d want %d", c.name, got, c.want)
		}
	}
}

func TestCountTrianglesMatchesCountCk(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 25; trial++ {
		g := graph.GNM(12+rng.Intn(10), 20+rng.Intn(40), rng)
		if CountTriangles(g) != CountCk(g, 3) {
			t.Fatalf("trial %d: triangle counts disagree: %d vs %d",
				trial, CountTriangles(g), CountCk(g, 3))
		}
	}
}

func TestCyclesThroughEdgeConsistency(t *testing.T) {
	// Summing cycles through every edge counts each k-cycle k times.
	rng := xrand.New(3)
	for trial := 0; trial < 15; trial++ {
		g := graph.ConnectedGNM(8+rng.Intn(4), 12+rng.Intn(10), rng)
		for k := 3; k <= 6; k++ {
			var sum int64
			for _, e := range g.Edges() {
				sum += CyclesThroughEdge(g, k, e)
			}
			if sum != int64(k)*CountCk(g, k) {
				t.Fatalf("trial=%d k=%d: sum=%d != k*count=%d",
					trial, k, sum, int64(k)*CountCk(g, k))
			}
		}
	}
}

func TestGreedyCyclePacking(t *testing.T) {
	rng := xrand.New(4)
	// A disjoint union of q cycles packs exactly q.
	for _, k := range []int{3, 5, 6} {
		q := 4
		g := graph.Cycle(k)
		for i := 1; i < q; i++ {
			g = graph.DisjointUnion(g, graph.Cycle(k))
		}
		packed := GreedyCyclePacking(g, k)
		if len(packed) != q {
			t.Fatalf("k=%d: packed %d want %d", k, len(packed), q)
		}
	}
	// Packed cycles are valid and edge-disjoint.
	g, _ := graph.FarFromCkFree(40, 5, 0.05, rng)
	packed := GreedyCyclePacking(g, 5)
	used := map[graph.Edge]bool{}
	for _, cyc := range packed {
		assertCycle(t, g, 5, cyc)
		for i := range cyc {
			e := graph.Edge{U: cyc[i], V: cyc[(i+1)%5]}.Canon()
			if used[e] {
				t.Fatalf("edge %v reused across packed cycles", e)
			}
			used[e] = true
		}
	}
}

func TestGreedyPackingMeetsLemma4(t *testing.T) {
	// On generator-certified ε-far graphs, the packing found must reach the
	// planted q ≥ εm/k (greedy may find even more).
	rng := xrand.New(5)
	for _, k := range []int{3, 4, 6} {
		g, q := graph.FarFromCkFree(60, k, 0.05, rng)
		packed := GreedyCyclePacking(g, k)
		if len(packed) < q {
			t.Fatalf("k=%d: greedy packed %d < planted %d", k, len(packed), q)
		}
	}
}

func TestColorCodingAgreesWithOracle(t *testing.T) {
	rng := xrand.New(6)
	for trial := 0; trial < 12; trial++ {
		n := 8 + rng.Intn(8)
		g := graph.ConnectedGNM(n, clampEdges(n, n+rng.Intn(2*n)), rng)
		for k := 3; k <= 6; k++ {
			want := HasCk(g, k)
			// Enough iterations for near-certain detection at these sizes.
			got := ColorCoding(g, k, 300, rng)
			if got && !want {
				t.Fatalf("color coding invented a C%d", k)
			}
			if want && !got {
				t.Fatalf("color coding missed a C%d (present with prob < 1e-20)", k)
			}
		}
	}
}

func TestColorCodingOneSided(t *testing.T) {
	rng := xrand.New(7)
	// Ck-free graphs are never flagged regardless of iterations.
	for _, k := range []int{3, 4, 5, 6, 7} {
		if ColorCoding(graph.RandomTree(30, rng), k, 50, rng) {
			t.Fatalf("tree flagged as containing C%d", k)
		}
	}
	if ColorCoding(graph.Cycle(8), 5, 200, rng) {
		t.Fatal("C8 flagged as containing C5")
	}
}

// clampEdges caps a requested edge count at the simple-graph maximum.
func clampEdges(n, m int) int {
	if max := n * (n - 1) / 2; m > max {
		return max
	}
	return m
}
