package cycledetect_test

import (
	"fmt"

	"cycledetect"
)

// The full tester on a graph that is one big cycle: some repetition's
// minimum-rank edge always lies on it, so it is found (and a Ck-free graph
// would never be rejected).
func ExampleTest() {
	g := cycledetect.NewGraph(5)
	for i := 0; i < 5; i++ {
		if err := g.AddEdge(i, (i+1)%5); err != nil {
			panic(err)
		}
	}
	res, err := cycledetect.Test(g, cycledetect.Options{K: 5, Epsilon: 0.2, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("rejected:", res.Rejected)
	fmt.Println("witness length:", len(res.Witness))
	// Output:
	// rejected: true
	// witness length: 5
}

// The deterministic Phase-2 detector answers "is there a C4 through this
// edge?" in exactly ⌊k/2⌋ rounds.
func ExampleDetectThroughEdge() {
	// A square with a diagonal: 0-1-2-3-0 plus chord 0-2.
	g := cycledetect.NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	// {0,1} lies on the C4 (0,1,2,3).
	res, err := cycledetect.DetectThroughEdge(g, 0, 1, cycledetect.Options{K: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("C4 through {0,1}:", res.Rejected, "in", res.Rounds, "rounds")
	// The chord {0,2} lies on no C4: that would need a 3-edge path from 0
	// to 2 avoiding the chord, and every such attempt (0-1-?-2 or 0-3-?-2)
	// has no third vertex to fill in. The detector confirms.
	res, err = cycledetect.DetectThroughEdge(g, 0, 2, cycledetect.Options{K: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("C4 through {0,2}:", res.Rejected)
	// Output:
	// C4 through {0,1}: true in 2 rounds
	// C4 through {0,2}: false
}

// RequiredRepetitions exposes the amplification arithmetic of Theorem 1.
func ExampleRequiredRepetitions() {
	r1, _ := cycledetect.RequiredRepetitions(0.2)
	r2, _ := cycledetect.RequiredRepetitions(0.1)
	fmt.Println(r1, r2) // halving epsilon doubles the repetitions: O(1/ε)
	// Output:
	// 41 82
}
