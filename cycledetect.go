// Package cycledetect is a Go implementation of "Distributed Detection of
// Cycles" (Fraigniaud & Olivetti, SPAA 2017): a 1-sided-error distributed
// property-testing algorithm that decides Ck-freeness for every k ≥ 3 in
// O(1/ε) rounds of the CONGEST model.
//
// The package simulates the CONGEST network (one goroutine per node with a
// channel per edge, or a lockstep engine), runs the paper's two-phase tester
// on it, and reports the network's verdict together with traffic statistics
// that verify the paper's bandwidth claims.
//
// # Quick start
//
//	g := cycledetect.NewGraph(6)
//	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}} {
//		g.AddEdge(e[0], e[1])
//	}
//	res, err := cycledetect.Test(g, cycledetect.Options{K: 6, Epsilon: 0.1})
//	// res.Rejected == true: some node found a C6 and can exhibit it.
//
// Two entry points are provided:
//
//   - Test runs the full randomized tester (Phase 1 + Phase 2, amplified to
//     the 2/3 guarantee on ε-far instances; never rejects a Ck-free graph).
//   - DetectThroughEdge runs the deterministic Phase-2 detector for one
//     candidate edge in exactly ⌊k/2⌋ rounds; a single k-cycle through the
//     edge is always found.
package cycledetect

import (
	"errors"
	"fmt"

	"cycledetect/internal/congest"
	"cycledetect/internal/core"
	"cycledetect/internal/graph"
	"cycledetect/internal/ptest"
)

// Graph is a simple undirected graph under construction. Vertices are
// 0..n-1. The zero value is unusable; call NewGraph.
type Graph struct {
	b *graph.Builder
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{b: graph.NewBuilder(n)}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and out-of-range
// endpoints are errors (the CONGEST model works on simple graphs); adding an
// existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("cycledetect: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= g.b.N() || v >= g.b.N() {
		return fmt.Errorf("cycledetect: edge {%d,%d} out of range [0,%d)", u, v, g.b.N())
	}
	g.b.AddEdge(u, v)
	return nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.b.N() }

// M returns the number of (distinct) edges added.
func (g *Graph) M() int { return g.b.M() }

// build freezes the graph for simulation.
func (g *Graph) build() *graph.Graph { return g.b.Build() }

// Engine names a simulation engine.
type Engine = congest.Engine

// Available engines. EngineBSP is a lockstep reference engine; EngineChannels
// runs one goroutine per node with a buffered channel per directed edge.
const (
	EngineBSP      = congest.EngineBSP
	EngineChannels = congest.EngineChannels
)

// Options configures Test and DetectThroughEdge.
type Options struct {
	// K is the cycle length to test for (K >= 3). Required.
	K int
	// Epsilon is the property-testing parameter in (0,1): the tester
	// distinguishes Ck-free graphs from graphs ε-far from Ck-free. Required
	// for Test unless Reps is set; ignored by DetectThroughEdge.
	Epsilon float64
	// Reps overrides the repetition count derived from Epsilon (expert use:
	// measurement of per-repetition behavior).
	Reps int
	// Seed seeds all node coins; runs are deterministic per seed.
	Seed uint64
	// Engine selects the simulation engine; empty means EngineBSP.
	Engine Engine
	// IDs optionally assigns node identifiers (distinct, non-negative,
	// IDs[v] for vertex v). Nil means vertex v has ID v.
	IDs []int64
	// Naive switches Phase 2 to unpruned append-and-forward (the §3.2
	// strawman). Message sizes are then unbounded; for ablation experiments.
	Naive bool
	// BandwidthBits, when positive, aborts the run if any message exceeds
	// the budget — a hard CONGEST enforcement.
	BandwidthBits int
}

func (o *Options) mode() core.Mode {
	if o.Naive {
		return core.ModeNaive
	}
	return core.ModePruned
}

// Result reports a run's outcome.
type Result struct {
	// Rejected is true iff at least one node output reject, i.e. a k-cycle
	// was detected. By 1-sidedness, Rejected implies the cycle is real.
	Rejected bool
	// RejectingNodes lists IDs of nodes that output reject (ascending).
	RejectingNodes []int64
	// Witness is a detected k-cycle as an ordered list of node IDs
	// (consecutive entries adjacent, last adjacent to first); nil if
	// accepted.
	Witness []int64
	// Rounds is the number of CONGEST rounds used.
	Rounds int
	// Repetitions is the number of two-phase repetitions run (Test only).
	Repetitions int
	// Messages is the total number of (non-empty) messages sent.
	Messages int64
	// TotalBits is the total traffic volume.
	TotalBits int64
	// MaxMessageBits is the largest single message, in bits — the quantity
	// the CONGEST model bounds by O(log n).
	MaxMessageBits int
	// MaxSequencesPerMessage is the largest number of ID sequences packed
	// into one Phase-2 message (Lemma 3 bounds it by (k−t+1)^(t−1)).
	MaxSequencesPerMessage int
}

// ErrEmptyGraph is returned when the graph has no vertices.
var ErrEmptyGraph = errors.New("cycledetect: empty graph")

// Test runs the full distributed property tester for Ck-freeness on g.
//
// Guarantees (Theorem 1): if g is Ck-free every node accepts, always; if g
// is Epsilon-far from Ck-free, some node rejects with probability at least
// 2/3. The round count is Repetitions·(1+⌊K/2⌋) ∈ O(1/ε), independent of
// the size of g.
func Test(g *Graph, opts Options) (*Result, error) {
	if err := validate(g, &opts, true); err != nil {
		return nil, err
	}
	prog := &core.Tester{K: opts.K, Eps: opts.Epsilon, Reps: opts.Reps, Mode: opts.mode()}
	res, err := congest.RunWith(opts.Engine, g.build(), prog, congest.Config{
		Seed:          opts.Seed,
		IDs:           opts.IDs,
		BandwidthBits: opts.BandwidthBits,
	})
	if err != nil {
		return nil, err
	}
	out := summarize(res)
	out.Repetitions = prog.Repetitions()
	return out, nil
}

// DetectThroughEdge runs the deterministic Phase-2 detector: does a k-cycle
// pass through the edge {u, v} (given as node IDs)? It completes in exactly
// ⌊K/2⌋ rounds and is exact — no farness assumption, no error probability
// (§1.2: "even if there is just a single k-cycle passing through e, that
// cycle will be detected").
func DetectThroughEdge(g *Graph, u, v int64, opts Options) (*Result, error) {
	if err := validate(g, &opts, false); err != nil {
		return nil, err
	}
	if u == v {
		return nil, fmt.Errorf("cycledetect: candidate edge endpoints equal (%d)", u)
	}
	prog := &core.EdgeDetector{K: opts.K, U: u, V: v, Mode: opts.mode()}
	res, err := congest.RunWith(opts.Engine, g.build(), prog, congest.Config{
		Seed:          opts.Seed,
		IDs:           opts.IDs,
		BandwidthBits: opts.BandwidthBits,
	})
	if err != nil {
		return nil, err
	}
	return summarize(res), nil
}

// RequiredRepetitions returns the number of repetitions Test will run for a
// given epsilon: ⌈(e²/ε)·ln 3⌉.
func RequiredRepetitions(epsilon float64) (int, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("cycledetect: epsilon %v outside (0,1)", epsilon)
	}
	return ptest.Reps(epsilon), nil
}

func validate(g *Graph, opts *Options, needEps bool) error {
	if g == nil || g.b == nil || g.N() == 0 {
		return ErrEmptyGraph
	}
	if opts.K < 3 {
		return fmt.Errorf("cycledetect: K must be at least 3, got %d", opts.K)
	}
	if needEps && opts.Reps <= 0 {
		if opts.Epsilon <= 0 || opts.Epsilon >= 1 {
			return fmt.Errorf("cycledetect: Epsilon %v outside (0,1) and no Reps given", opts.Epsilon)
		}
	}
	if opts.Reps < 0 {
		return fmt.Errorf("cycledetect: negative Reps %d", opts.Reps)
	}
	return nil
}

func summarize(res *congest.Result) *Result {
	dec := core.Summarize(res.Outputs, res.IDs)
	return &Result{
		Rejected:               dec.Reject,
		RejectingNodes:         dec.RejectingIDs,
		Witness:                dec.Witness,
		Rounds:                 res.Stats.Rounds,
		Messages:               res.Stats.MessagesSent,
		TotalBits:              res.Stats.TotalBits,
		MaxMessageBits:         res.Stats.MaxMessageBits,
		MaxSequencesPerMessage: dec.MaxSeqs,
	}
}
